#include "scanner.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace txlint {
namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

constexpr std::string_view kSharedField = "shared-field";
constexpr std::string_view kRawPeek = "raw-peek";
constexpr std::string_view kCatchSwallow = "catch-swallow";
constexpr std::string_view kUnpairedHandler = "unpaired-handler";
constexpr std::string_view kSharedCapture = "shared-value-capture";
constexpr std::string_view kTraceHook = "trace-hook";
constexpr std::string_view kIsolationClass = "isolation-class";
constexpr std::string_view kHandlerMutation = "handler-mutation";
constexpr std::string_view kHotPathContainer = "hot-path-container";
constexpr std::string_view kHandlerClosure = "handler-closure";
constexpr std::string_view kChopCompensation = "chop-compensation";

const std::vector<RuleInfo> kRules = {
    {kSharedField,
     "mutable primitive or raw-pointer member of a jstd:: node/collection type "
     "not wrapped in Shared<T>"},
    {kRawPeek,
     "direct access to a Shared cell's committed value (unsafe_peek / ->v_) "
     "outside oracle code"},
    {kCatchSwallow,
     "catch (...) or catch (Violated) block that can swallow the TM unwind "
     "(no rethrow/abort in body)"},
    {kUnpairedHandler,
     "commit handler registered without a paired abort handler in the same "
     "function"},
    {kSharedCapture, "Shared<T> object captured by value in a lambda"},
    {kTraceHook,
     "heap allocation or transactional (Shared<T>) access inside a trace-hook "
     "body (namespace trace, function on_*) — hooks run on the simulated hot "
     "path and must be raw fixed-buffer stores"},
    {kIsolationClass,
     "Shared<T> metadata member of a jstd:: collection (or tcc:: open-nested "
     "counter) never constructed with an explicit sim:: memory class — it "
     "defaults to the packed data arena and can share a virtual line with "
     "unrelated hot cells"},
    {kHandlerMutation,
     "collection mutation inside an on_abort/on_commit handler body with no "
     "compensation_run site registration — the runtime auditor and the txmc "
     "oracle cannot attribute the compensation, so a doubled or lost handler "
     "run corrupts the collection silently"},
    {kHotPathContainer,
     "node-based std:: container (std::unordered_*, std::set/map) in a TM "
     "hot-path header (flat_map.h, reader_dir.h, cpu_mask.h) — these headers "
     "are the per-access data path and must stay on flat, SIMD-probeable "
     "layouts"},
    {kHandlerClosure,
     "transaction-body lambda (atomically/open_atomically argument) captures "
     "by value a local holding a shared-collection read (get/poll/take/peek) "
     "— the snapshot is outside the read set, so a violated transaction "
     "replays with stale data instead of re-reading"},
    {kChopCompensation,
     "chop piece (tm::chopped().piece(...)) that mutates a collection "
     "without registering a compensation — a non-final piece's commit is "
     "durable before the chop finishes, so without a compensation argument "
     "(or a compensation_run site in the body) a failed or restarted chop "
     "cannot undo it"},
};

// Collection observer methods whose result, captured by copy into a later
// transaction body, is a stale snapshot (the handler-closure rule).
const std::unordered_set<std::string_view> kCollectionReads = {
    "get", "poll", "take", "peek", "try_dequeue"};

// Headers on the per-access TM data path: every tm_read/tm_write and every
// commit broadcast goes through these.  A node-based standard container here
// reintroduces exactly the pointer-chasing the FlatMap/CpuMask rewrite
// removed, so its appearance is a discipline violation, not a style choice.
const std::unordered_set<std::string_view> kHotPathHeaders = {
    "flat_map.h", "reader_dir.h", "cpu_mask.h"};
const std::unordered_set<std::string_view> kNodeContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "set", "multiset", "map", "multimap"};

// ---------------------------------------------------------------------------
// Suppression directives (parsed from the RAW text, comments included)
// ---------------------------------------------------------------------------

struct Suppressions {
  // rule -> set of suppressed lines ("*" entries recorded under each rule).
  std::unordered_map<std::string, std::unordered_set<int>> lines;
  std::unordered_set<std::string> whole_file;
  bool all_file = false;

  bool suppressed(std::string_view rule, int line) const {
    if (all_file || whole_file.count(std::string(rule)) != 0) return true;
    auto it = lines.find(std::string(rule));
    return it != lines.end() && it->second.count(line) != 0;
  }
};

std::vector<std::string> split_rule_list(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

Suppressions parse_suppressions(std::string_view content) {
  Suppressions sup;
  // region state: rule -> line the begin-allow appeared on (-1 = closed)
  std::unordered_map<std::string, int> open_regions;
  int line = 1;
  std::size_t pos = 0;
  auto mark = [&sup](const std::string& rule, int l) {
    sup.lines[rule].insert(l);
    sup.lines[rule].insert(l + 1);
  };
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string_view ln =
        content.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    const std::size_t tag = ln.find("txlint:");
    if (tag != std::string_view::npos) {
      const std::string_view rest = ln.substr(tag + 7);
      auto grab = [&rest](std::string_view verb) -> std::optional<std::string_view> {
        const std::size_t v = rest.find(verb);
        if (v == std::string_view::npos) return std::nullopt;
        const std::size_t open = rest.find('(', v + verb.size());
        if (open == std::string_view::npos) return std::nullopt;
        const std::size_t close = rest.find(')', open);
        if (close == std::string_view::npos) return std::nullopt;
        return rest.substr(open + 1, close - open - 1);
      };
      // Order matters: "allow(" is a substring of the other verbs' names, so
      // probe the longer verbs first.
      if (auto args = grab("allow-file")) {
        for (const auto& r : split_rule_list(*args)) {
          if (r == "*") {
            sup.all_file = true;
          } else {
            sup.whole_file.insert(r);
          }
        }
      } else if (auto args2 = grab("begin-allow")) {
        for (const auto& r : split_rule_list(*args2)) open_regions[r] = line;
      } else if (auto args3 = grab("end-allow")) {
        for (const auto& r : split_rule_list(*args3)) {
          auto it = open_regions.find(r);
          if (it != open_regions.end() && it->second >= 0) {
            for (int l = it->second; l <= line; ++l) sup.lines[r].insert(l);
            it->second = -1;
          }
        }
      } else if (auto args4 = grab("allow")) {
        for (const auto& r : split_rule_list(*args4)) {
          if (r == "*") {
            for (const auto& info : kRules) mark(std::string(info.name), line);
          } else {
            mark(r, line);
          }
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
  // Unterminated regions run to EOF.
  for (auto& [rule, start] : open_regions) {
    if (start >= 0) {
      for (int l = start; l <= line; ++l) sup.lines[rule].insert(l);
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Cleaning: blank comments, string/char literals and preprocessor lines so
// the tokenizer sees pure code.  Newlines are preserved for line numbers.
// ---------------------------------------------------------------------------

std::string clean_source(std::string_view in) {
  std::string out(in);
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // for raw strings: ")delim\""
  bool line_is_pp = false;
  bool line_has_code = false;

  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '\n') {
          line_is_pp = false;
          line_has_code = false;
          continue;
        }
        if (!line_has_code && !line_is_pp && c == '#') {
          line_is_pp = true;
        }
        if (line_is_pp) {
          // Blank the whole preprocessor line (and its continuations).
          if (c == '\\' && n == '\n') {
            out[i] = ' ';
            continue;  // keep line_is_pp across the continuation
          }
          out[i] = ' ';
          continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                               in[i - 1] != '_'))) {
          // Raw string R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < in.size() && in[p] != '(' && delim.size() < 16) delim += in[p++];
          if (p < in.size() && in[p] == '(') {
            raw_delim = ")" + delim + "\"";
            st = St::kRawString;
            out[i] = ' ';
          }
        } else if (c == '"') {
          st = St::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          line_is_pp = false;
          line_has_code = false;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && n != '\n') {
          out[i] = ' ';
          if (i + 1 < in.size() && n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (out[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string_view text;
  int line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view s) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < s.size() && ident_char(s[j])) ++j;
      toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < s.size() && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
      toks.push_back({Token::Kind::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuators we rely on.  `<<`/`>>`/`<=`/`>=` are left as
    // single chars so template-angle matching stays simple.
    static constexpr std::array<std::string_view, 6> kTwo = {"::", "->", "&&",
                                                             "||", "==", "!="};
    if (s.compare(i, 3, "...") == 0) {
      toks.push_back({Token::Kind::kPunct, s.substr(i, 3), line});
      i += 3;
      continue;
    }
    bool matched = false;
    for (const auto& op : kTwo) {
      if (s.compare(i, 2, op) == 0) {
        toks.push_back({Token::Kind::kPunct, s.substr(i, 2), line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    toks.push_back({Token::Kind::kPunct, s.substr(i, 1), line});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Scanner proper
// ---------------------------------------------------------------------------

const std::unordered_set<std::string_view> kPrimitiveTypes = {
    "bool",     "char",     "short",    "int",      "long",        "unsigned",
    "signed",   "float",    "double",   "size_t",   "uintptr_t",   "intptr_t",
    "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "int8_t",      "int16_t",
    "int32_t",  "int64_t",  "ptrdiff_t"};

const std::unordered_set<std::string_view> kMemberSkipLead = {
    "static", "constexpr", "using",     "typedef", "friend",    "template",
    "enum",   "struct",    "class",     "public",  "private",   "protected",
    "operator", "virtual", "explicit",  "inline",  "const"};

const std::unordered_set<std::string_view> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "constexpr"};

const std::unordered_set<std::string_view> kBodyEscapes = {
    "throw", "abort", "terminate", "_Exit", "exit", "quick_exit", "rethrow_exception"};

// Identifiers forbidden inside trace-hook bodies (namespace trace, function
// name on_*): allocating calls would perturb hot-path wall-clock and malloc
// state; transactional accesses would recurse into the runtime being traced.
const std::unordered_set<std::string_view> kTraceHookAlloc = {
    "new",       "delete", "malloc",       "calloc",      "realloc",
    "push_back", "emplace_back", "emplace", "insert",     "resize",
    "reserve",   "make_unique",  "make_shared"};
const std::unordered_set<std::string_view> kTraceHookTmAccess = {
    "Shared", "atomically", "open_atomically", "tm_read", "tm_write",
    "unsafe_peek"};

// Collection-mutating method names.  A handler lambda that calls one of
// these on an object must register the compensation site first
// (audit::compensation_run / sem::compensation_run), the way the
// transactional collections' abort handlers do.  Lock-release calls
// (unlock / release / clear) are intentionally absent: releasing semantic
// locks in a handler is the disciplined pattern, not a mutation.
const std::unordered_set<std::string_view> kCollectionMutators = {
    "put",     "remove",     "insert",  "erase",   "push",    "pop",
    "push_back", "push_front", "pop_back", "pop_front", "enqueue", "dequeue",
    "add",     "take"};

// Tokens that count as declaring a memory class at a Shared cell's
// construction site (sim/vaddr.h).  String labels are blanked by
// clean_source, so the rule keys on identifier tokens only.
const std::unordered_set<std::string_view> kIsolationTokens = {
    "kMetaCell", "kCounterCell", "kLockWord", "kDataCell",
    "MemClass",  "kLineIsolated", "kPacked"};

class Scanner {
 public:
  Scanner(const std::string& path, std::string_view content, const Options& opts)
      : path_(path), opts_(opts), sup_(parse_suppressions(content)),
        cleaned_(clean_source(content)) {
    // Tokens are string_views into cleaned_, which must outlive them.
    toks_ = tokenize(cleaned_);
  }

  std::vector<Finding> run() {
    walk();
    catch_pass();
    isolation_pass();
    handler_mutation_pass();
    chop_compensation_pass();
    hot_path_container_pass();
    std::sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    return std::move(findings_);
  }

 private:
  struct Frame {
    enum class Kind { kNamespace, kClass, kEnum, kFunction, kLambda, kBlock };
    Kind kind;
    std::string name;
    // Function frames only:
    std::unordered_set<std::string> shared_locals;
    // Locals assigned from a shared-collection read (handler-closure).
    std::unordered_set<std::string> collection_locals;
    int commit_line = -1, top_commit_line = -1;
    bool has_abort = false, has_top_abort = false;
    // Class frames only: token index where the current member stmt begins.
    std::size_t stmt_start = 0;
  };

  void emit(std::string_view rule, int line, std::string msg) {
    if (!opts_.only_rules.empty() &&
        std::find(opts_.only_rules.begin(), opts_.only_rules.end(), rule) ==
            opts_.only_rules.end()) {
      return;
    }
    if (sup_.suppressed(rule, line)) return;
    findings_.push_back(Finding{path_, line, std::string(rule), std::move(msg)});
  }

  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool is(std::size_t i, std::string_view t) const {
    return i < toks_.size() && toks_[i].text == t;
  }
  bool is_ident(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == Token::Kind::kIdent;
  }

  /// Index of the matching closer for the opener at `i` ('(', '{' or '[');
  /// toks_.size() if unterminated.
  std::size_t match(std::size_t i) const {
    const std::string_view open = toks_[i].text;
    const std::string_view close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t j = i; j < toks_.size(); ++j) {
      if (toks_[j].text == open) ++depth;
      if (toks_[j].text == close && --depth == 0) return j;
    }
    return toks_.size();
  }

  bool in_namespace(std::string_view name) const {
    for (const auto& f : stack_) {
      if (f.kind == Frame::Kind::kNamespace && f.name == name) return true;
    }
    return false;
  }

  Frame* nearest_function() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Frame::Kind::kFunction) return &*it;
    }
    return nullptr;
  }

  bool shared_local_visible(std::string_view name) const {
    for (const auto& f : stack_) {
      if (f.shared_locals.count(std::string(name)) != 0) return true;
    }
    return false;
  }

  bool collection_local_visible(std::string_view name) const {
    for (const auto& f : stack_) {
      if (f.collection_locals.count(std::string(name)) != 0) return true;
    }
    return false;
  }

  // ---- main structural walk ----

  void walk() {
    std::vector<std::size_t> paren_head;  // token index before each open '('
    struct Pending {
      Frame::Kind kind;
      std::string name;
    };
    std::optional<Pending> pending;

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];

      if (t.text == "namespace" && t.kind == Token::Kind::kIdent) {
        std::string name;
        std::size_t j = i + 1;
        while (is_ident(j) || is(j, "::")) {
          name += toks_[j].text;
          ++j;
        }
        if (is(j, "=")) {  // namespace alias
          while (j < toks_.size() && !is(j, ";")) ++j;
          i = j;
          continue;
        }
        if (is(j, "{")) pending = Pending{Frame::Kind::kNamespace, name};
        i = j - 1;
        continue;
      }

      if ((t.text == "class" || t.text == "struct") && t.kind == Token::Kind::kIdent) {
        std::size_t j = i + 1;
        std::string name;
        if (is_ident(j)) {
          name = toks_[j].text;
          ++j;
        }
        if (is(j, "final")) ++j;
        if (is(j, ";") || (is_ident(j) && name.empty())) continue;  // fwd decl / elaborated use
        if (is(j, ":")) {  // base clause: scan to the body brace
          int angle = 0;
          while (j < toks_.size() && !(angle == 0 && is(j, "{")) && !is(j, ";")) {
            if (is(j, "<")) ++angle;
            if (is(j, ">")) angle = std::max(0, angle - 1);
            ++j;
          }
        }
        if (is(j, "{")) {
          pending = Pending{Frame::Kind::kClass, name};
          i = j - 1;
        }
        continue;
      }

      if (t.text == "enum" && t.kind == Token::Kind::kIdent) {
        std::size_t j = i + 1;
        while (j < toks_.size() && !is(j, "{") && !is(j, ";")) ++j;
        if (is(j, "{")) {
          pending = Pending{Frame::Kind::kEnum, ""};
          i = j - 1;
        }
        continue;
      }

      if (t.text == "(") {
        paren_head.push_back(i == 0 ? toks_.size() : i - 1);
        continue;
      }
      if (t.text == ")") {
        if (!paren_head.empty()) {
          last_paren_head_ = paren_head.back();
          paren_head.pop_back();
        }
        continue;
      }

      if (t.text == "{") {
        Frame f;
        if (pending.has_value()) {
          f.kind = pending->kind;
          f.name = pending->name;
          pending.reset();
        } else {
          f = classify_brace(i);
        }
        f.stmt_start = i + 1;
        stack_.push_back(std::move(f));
        continue;
      }
      if (t.text == "}") {
        if (!stack_.empty()) {
          finish_frame(stack_.back());
          stack_.pop_back();
          if (!stack_.empty()) stack_.back().stmt_start = i + 1;
        }
        continue;
      }

      // Statement boundaries at class scope (member declarations).
      if (!stack_.empty() && stack_.back().kind == Frame::Kind::kClass) {
        Frame& cls = stack_.back();
        if (t.text == ";") {
          check_member_stmt(cls, cls.stmt_start, i);
          collect_isolation_decls(cls, cls.stmt_start, i);
          cls.stmt_start = i + 1;
          continue;
        }
        if (t.text == ":" && i > 0 &&
            (toks_[i - 1].text == "public" || toks_[i - 1].text == "private" ||
             toks_[i - 1].text == "protected")) {
          cls.stmt_start = i + 1;
          continue;
        }
      }

      if (t.kind == Token::Kind::kIdent) ident_checks(i);
      if (t.text == "[") lambda_check(i);
    }

    while (!stack_.empty()) {
      finish_frame(stack_.back());
      stack_.pop_back();
    }
  }

  /// Classifies a `{` with no pending namespace/class/enum header.
  Frame classify_brace(std::size_t i) {
    Frame f;
    f.kind = Frame::Kind::kBlock;
    // Walk back over trailing function modifiers to find what introduced us.
    std::size_t p = i;
    while (p > 0) {
      --p;
      const std::string_view x = toks_[p].text;
      if (x == "const" || x == "noexcept" || x == "override" || x == "final" ||
          x == "mutable") {
        continue;
      }
      // trailing return type: skip back to the `)` heuristically
      if (toks_[p].kind == Token::Kind::kIdent && p >= 2 && toks_[p - 1].text == "->" ) {
        p -= 1;
        continue;
      }
      if (x == "->") continue;
      break;
    }
    const Token& prev = toks_[p];
    if (prev.text == ")") {
      const std::size_t h = last_paren_head_;
      if (h < toks_.size()) {
        const Token& head = toks_[h];
        if (head.text == "]") {
          f.kind = Frame::Kind::kLambda;
        } else if (head.kind == Token::Kind::kIdent &&
                   kControlKeywords.count(head.text) == 0) {
          f.kind = Frame::Kind::kFunction;
          f.name = head.text;
          if (h > 0 && toks_[h - 1].text == "~") f.name = "~" + f.name;
        }
      }
    } else if (prev.text == "]") {
      f.kind = Frame::Kind::kLambda;
    }
    return f;
  }

  void finish_frame(const Frame& f) {
    if (f.kind != Frame::Kind::kFunction) return;
    if (f.top_commit_line >= 0 && !f.has_top_abort && f.name != "on_top_commit") {
      emit(kUnpairedHandler, f.top_commit_line,
           "function '" + f.name +
               "' registers a top-level commit handler (on_top_commit) without a "
               "paired on_top_abort — semantic state leaks if the transaction aborts");
    }
    if (f.commit_line >= 0 && !f.has_abort && f.name != "on_commit") {
      emit(kUnpairedHandler, f.commit_line,
           "function '" + f.name +
               "' registers a commit handler (on_commit) without a paired on_abort "
               "— open-nested effects are not compensated on abort");
    }
  }

  // ---- per-identifier checks (raw-peek, handler registration, Shared decls) --

  void ident_checks(std::size_t i) {
    const std::string_view id = toks_[i].text;

    if (in_namespace("trace")) {
      Frame* fn = nearest_function();
      if (fn != nullptr && fn->name.rfind("on_", 0) == 0) {
        if (kTraceHookAlloc.count(id) != 0) {
          emit(kTraceHook, toks_[i].line,
               "heap-allocating call '" + std::string(id) + "' inside trace hook '" +
                   fn->name + "' — hooks run on the simulated hot path; store "
                   "into the preallocated per-CPU event buffer instead");
        } else if (kTraceHookTmAccess.count(id) != 0) {
          emit(kTraceHook, toks_[i].line,
               "transactional access '" + std::string(id) + "' inside trace hook '" +
                   fn->name + "' — a hook must not re-enter the runtime it is "
                   "tracing");
        }
      }
    }

    if (id == "unsafe_peek" || id == "unsafe_peek_next") {
      // Calls only; the declaration `T unsafe_peek() const {` is the oracle
      // API itself.  Oracle wrappers (functions named unsafe_*) and
      // destructors (teardown) are exempt.
      const bool is_call = is(i + 1, "(") &&
                           !(is(i + 2, ")") && (is(i + 3, "{") || is(i + 3, "const")));
      if (is_call) {
        const Frame* fn = nullptr;
        for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
          if (it->kind == Frame::Kind::kFunction) {
            fn = &*it;
            break;
          }
        }
        const bool exempt =
            fn != nullptr && (fn->name.rfind("unsafe_", 0) == 0 || fn->name.rfind('~', 0) == 0);
        if (!exempt) {
          emit(kRawPeek, toks_[i].line,
               "direct read of a Shared cell's committed value (" + std::string(id) +
                   ") outside an oracle/teardown context");
        }
      }
    }

    if (id == "v_" && i > 0 && (toks_[i - 1].text == "." || toks_[i - 1].text == "->")) {
      emit(kRawPeek, toks_[i].line,
           "reach-through access to a Shared cell's raw storage (v_)");
    }

    if ((id == "on_commit" || id == "on_abort" || id == "on_top_commit" ||
         id == "on_top_abort") &&
        is(i + 1, "(") && !is(i + 2, ")")) {
      // A call with arguments (registration), not the definition's signature.
      Frame* fn = nearest_function();
      if (fn != nullptr) {
        if (id == "on_commit" && fn->commit_line < 0) fn->commit_line = toks_[i].line;
        if (id == "on_top_commit" && fn->top_commit_line < 0) {
          fn->top_commit_line = toks_[i].line;
        }
        if (id == "on_abort") fn->has_abort = true;
        if (id == "on_top_abort") fn->has_top_abort = true;
      }
    }

    // `x = <expr involving .get(/->poll(/...>`: x now holds a snapshot of a
    // shared collection's state.  Recorded so lambda_check can flag a later
    // transaction body capturing the snapshot by value (handler-closure).
    if (is(i + 1, "=") &&
        (i == 0 || (toks_[i - 1].text != "." && toks_[i - 1].text != "->"))) {
      Frame* fn = nearest_function();
      if (fn != nullptr) {
        const std::size_t limit = std::min(toks_.size(), i + 60);
        for (std::size_t j = i + 2; j < limit && !is(j, ";"); ++j) {
          if ((toks_[j].text == "." || toks_[j].text == "->") &&
              is_ident(j + 1) && kCollectionReads.count(toks_[j + 1].text) != 0 &&
              is(j + 2, "(")) {
            fn->collection_locals.insert(std::string(id));
            break;
          }
        }
      }
    }

    if (id == "Shared" && is(i + 1, "<") && !stack_.empty() &&
        stack_.back().kind != Frame::Kind::kClass &&
        stack_.back().kind != Frame::Kind::kNamespace) {
      // A local `Shared<T> name` (or `Shared<T>& name`) declaration.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks_.size() && j < i + 64; ++j) {
        if (toks_[j].text == "<") ++depth;
        if (toks_[j].text == ">" && --depth == 0) break;
        if (toks_[j].text == ";") return;
      }
      if (depth != 0) return;
      ++j;
      if (is(j, "*")) return;  // pointer to Shared: value capture is fine
      if (is(j, "&")) ++j;
      if (is_ident(j) && (is(j + 1, ";") || is(j + 1, "=") || is(j + 1, "(") ||
                          is(j + 1, "{"))) {
        Frame* fn = nearest_function();
        if (fn != nullptr) fn->shared_locals.insert(std::string(toks_[j].text));
      }
    }
  }

  // ---- class-member statement analysis (shared-field) ----

  void check_member_stmt(const Frame& cls, std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    if (!in_namespace("jstd")) return;
    // Iterators and RAII guards are transaction-local by design.
    if (cls.name.find("Iter") != std::string::npos ||
        cls.name.find("Guard") != std::string::npos) {
      return;
    }
    std::size_t b = begin;
    if (is(b, "mutable")) ++b;  // mutable members get no exemption
    if (b >= end) return;
    if (toks_[b].kind == Token::Kind::kIdent && kMemberSkipLead.count(toks_[b].text) != 0) {
      return;
    }
    bool has_paren = false, has_star = false, has_cell = false, has_prim = false;
    int first_prim_line = toks_[b].line;
    for (std::size_t j = b; j < end; ++j) {
      const Token& t = toks_[j];
      if (t.text == "(") has_paren = true;
      if (t.text == "=") break;  // default initializer: type tokens are before it
      if (t.text == "*") has_star = true;
      if (t.text == "const") return;  // `T* const x` / east-const: immutable member
      if (t.kind == Token::Kind::kIdent) {
        if (t.text == "Shared" || t.text == "Mutex" || t.text == "atomic") has_cell = true;
        if (kPrimitiveTypes.count(t.text) != 0 && !has_prim) {
          has_prim = true;
          first_prim_line = t.line;
        }
        if (t.text == "operator") return;
      }
    }
    if (has_paren || has_cell) return;
    if (has_star) {
      emit(kSharedField, toks_[b].line,
           "raw-pointer member of jstd::" + cls.name +
               " is shared mutable state — wrap it in atomos::Shared<T*> or make it const");
      return;
    }
    if (has_prim) {
      emit(kSharedField, first_prim_line,
           "mutable primitive member of jstd::" + cls.name +
               " is shared mutable state — wrap it in atomos::Shared<T> or make it const");
    }
  }

  // ---- lambda capture analysis (shared-value-capture) ----

  void lambda_check(std::size_t i) {
    if (i > 0) {
      const Token& p = toks_[i - 1];
      const bool starts_lambda =
          p.text == "(" || p.text == "," || p.text == "=" || p.text == "return" ||
          p.text == "{" || p.text == ";" || p.text == "&&" || p.text == "||" ||
          p.text == ":" || p.text == "?";
      if (!starts_lambda) return;
    }
    const std::size_t close = match(i);
    if (close >= toks_.size()) return;

    // A lambda passed directly to atomically()/open_atomically() is a
    // transaction body: retries re-run it, so by-value captures of
    // collection snapshots replay stale observations (handler-closure).
    const bool tx_body =
        i >= 2 && is(i - 1, "(") &&
        (toks_[i - 2].text == "atomically" || toks_[i - 2].text == "open_atomically");

    bool default_copy = false;
    std::vector<std::pair<std::string_view, int>> value_captures;  // (name, line)
    std::vector<std::pair<std::string_view, int>> stale_captures;
    std::size_t j = i + 1;
    while (j < close) {
      if (is(j, "&")) {  // by-reference (default or named): fine
        ++j;
        if (is_ident(j)) ++j;
      } else if (is(j, "=")) {
        default_copy = true;
        ++j;
      } else if (is(j, "this") || is(j, "*")) {
        ++j;
      } else if (is_ident(j)) {
        const std::string_view name = toks_[j].text;
        const int line = toks_[j].line;
        if (is(j + 1, "=")) {
          // init-capture `x = expr`: flag when expr names a tracked local
          std::size_t k = j + 2;
          while (k < close && !is(k, ",")) {
            if (is_ident(k) && !is(k - 1, "&")) {
              if (shared_local_visible(toks_[k].text)) {
                value_captures.emplace_back(toks_[k].text, toks_[k].line);
              } else if (tx_body && collection_local_visible(toks_[k].text)) {
                stale_captures.emplace_back(toks_[k].text, toks_[k].line);
              }
            }
            ++k;
          }
          j = k;
        } else if (shared_local_visible(name)) {
          value_captures.emplace_back(name, line);
          ++j;
        } else if (tx_body && collection_local_visible(name)) {
          stale_captures.emplace_back(name, line);
          ++j;
        } else {
          ++j;
        }
      } else {
        ++j;
      }
    }

    for (const auto& [name, line] : value_captures) {
      emit(kSharedCapture, line,
           "Shared<T> object '" + std::string(name) +
               "' captured by value in a lambda — capture by reference instead");
    }
    for (const auto& [name, line] : stale_captures) {
      emit(kHandlerClosure, line,
           "transaction body captures collection snapshot '" + std::string(name) +
               "' by value — the read is outside the transaction's read set; "
               "re-read it inside the body (or capture by reference)");
    }

    if (default_copy) {
      // `[=]`: flag only if the body actually uses a tracked local.
      std::size_t b = close + 1;
      if (is(b, "(")) b = match(b) + 1;
      while (b < toks_.size() && !is(b, "{") && !is(b, ";")) ++b;
      if (!is(b, "{")) return;
      const std::size_t bend = match(b);
      bool shared_hit = false, stale_hit = false;
      for (std::size_t k = b + 1; k < bend && k < toks_.size(); ++k) {
        if (!is_ident(k) ||
            (k > 0 && (toks_[k - 1].text == "." || toks_[k - 1].text == "->"))) {
          continue;
        }
        if (!shared_hit && shared_local_visible(toks_[k].text)) {
          shared_hit = true;
          emit(kSharedCapture, toks_[i].line,
               "default by-value capture [=] copies Shared<T> object '" +
                   std::string(toks_[k].text) + "' — capture by reference instead");
        } else if (!stale_hit && tx_body && collection_local_visible(toks_[k].text)) {
          stale_hit = true;
          emit(kHandlerClosure, toks_[i].line,
               "default by-value capture [=] copies collection snapshot '" +
                   std::string(toks_[k].text) +
                   "' into a transaction body — re-read it inside the body");
        }
        if (shared_hit && (stale_hit || !tx_body)) return;
      }
    }
  }

  // ---- isolation-class (arena discipline for hot metadata cells) ----

  /// Records every Shared<T> member declared by a class whose cells the
  /// arena model cares about: jstd collection classes (their size fields and
  /// dispatch pointers are read by every operation) and tcc open-nested
  /// counter/uid classes.  Node/bucket/entry inner types are bulk data —
  /// packed placement is their correct default, so they are exempt.
  void collect_isolation_decls(const Frame& cls, std::size_t begin, std::size_t end) {
    if (begin >= end || cls.name.empty()) return;
    auto name_has = [&cls](const char* s) {
      return cls.name.find(s) != std::string::npos;
    };
    const bool jstd_collection =
        in_namespace("jstd") && !name_has("Iter") && !name_has("Guard") &&
        !name_has("Node") && !name_has("Table") && !name_has("Entry") &&
        !name_has("Segment") && !name_has("Tower");
    const bool tcc_counter =
        in_namespace("tcc") && (name_has("Counter") || name_has("Generator"));
    if (!jstd_collection && !tcc_counter) return;
    for (std::size_t j = begin; j < end; ++j) {
      if (toks_[j].text != "Shared" || !is(j + 1, "<")) continue;
      int depth = 0;
      std::size_t k = j + 1;
      for (; k < end; ++k) {
        if (toks_[k].text == "<") ++depth;
        if (toks_[k].text == ">" && --depth == 0) break;
      }
      if (depth != 0) return;
      ++k;
      if (is_ident(k)) {
        iso_decls_.push_back({cls.name, std::string(toks_[k].text), toks_[k].line});
      }
      j = k;
    }
  }

  /// A declaration is satisfied when some construction site of the member —
  /// `name(...)` in a ctor init list or `name{...}` — names a sim:: memory
  /// class or isolation token.  One conscious placement decision per member
  /// is the contract; the file-flat scan keeps the check robust to multiple
  /// constructors.
  void isolation_pass() {
    if (iso_decls_.empty()) return;
    std::unordered_set<std::string> members;
    for (const auto& d : iso_decls_) members.insert(d.member);
    std::unordered_set<std::string> satisfied;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != Token::Kind::kIdent) continue;
      if (members.count(std::string(toks_[i].text)) == 0) continue;
      if (!is(i + 1, "(") && !is(i + 1, "{")) continue;
      const std::size_t close = match(i + 1);
      if (close >= toks_.size()) continue;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks_[j].kind == Token::Kind::kIdent &&
            kIsolationTokens.count(toks_[j].text) != 0) {
          satisfied.insert(std::string(toks_[i].text));
          break;
        }
      }
    }
    for (const auto& d : iso_decls_) {
      if (satisfied.count(d.member) != 0) continue;
      emit(kIsolationClass, d.line,
           "Shared member '" + d.member + "' of " + d.cls +
               " is never constructed with an explicit memory class "
               "(sim::kMetaCell / kCounterCell / kDataCell) — it defaults to "
               "the packed data arena, where construction adjacency can put it "
               "on the same virtual line as unrelated hot cells");
    }
  }

  // ---- hot-path-container pass ----

  /// In the data-path headers (kHotPathHeaders, matched by file basename),
  /// flags any `std::<node container>` type use.  Token-level: `std` `::`
  /// followed by a forbidden identifier.  `#include <set>` lines are not
  /// tokens that match this shape (no `std ::` prefix), so includes pulled in
  /// for unrelated reasons do not fire; actual declarations do.
  void hot_path_container_pass() {
    const std::size_t slash = path_.find_last_of('/');
    const std::string base = slash == std::string::npos ? path_ : path_.substr(slash + 1);
    if (kHotPathHeaders.count(base) == 0) return;
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (toks_[i].text != "std" || toks_[i].kind != Token::Kind::kIdent) continue;
      if (!is(i + 1, "::")) continue;
      if (!is_ident(i + 2) || kNodeContainers.count(toks_[i + 2].text) == 0) continue;
      emit(kHotPathContainer, toks_[i].line,
           "std::" + std::string(toks_[i + 2].text) + " in hot-path header " + base +
               " — the TM data path must use the flat SIMD-probeable structures "
               "(sim::FlatMap, sim::CpuMask, flat arrays), not node-based "
               "standard containers");
    }
  }

  // ---- catch-swallow pass ----

  void catch_pass() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].text != "catch" || toks_[i].kind != Token::Kind::kIdent) continue;
      if (!is(i + 1, "(")) continue;
      const std::size_t pclose = match(i + 1);
      if (pclose >= toks_.size()) continue;
      bool dangerous = false;
      bool is_violated = false;
      for (std::size_t j = i + 2; j < pclose; ++j) {
        if (toks_[j].text == "...") dangerous = true;
        if (toks_[j].text == "Violated") dangerous = is_violated = true;
      }
      if (!dangerous) continue;
      std::size_t b = pclose + 1;
      if (!is(b, "{")) continue;
      const std::size_t bend = match(b);
      bool escapes = false;
      for (std::size_t j = b + 1; j < bend && j < toks_.size(); ++j) {
        if (toks_[j].kind == Token::Kind::kIdent && kBodyEscapes.count(toks_[j].text) != 0) {
          escapes = true;
          break;
        }
      }
      if (!escapes) {
        emit(kCatchSwallow, toks_[i].line,
             std::string(is_violated ? "catch of atomos::Violated" : "catch (...)") +
                 " neither rethrows nor aborts — it can swallow the TM violation "
                 "unwind and corrupt transaction state");
      }
    }
  }

  // ---- handler-mutation pass ----

  /// Finds each lambda registered directly in an on_abort / on_top_abort /
  /// on_commit / on_top_commit call and checks its body: a direct
  /// collection-mutating method call (`bag->put(...)`, `q.remove(...)`)
  /// must be covered by a compensation_run site registration in the same
  /// body.  Handlers that only dispatch (`self->abort_handler(cpu)`) or
  /// only release locks never match a mutator and stay silent.
  void handler_mutation_pass() {
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      const std::string_view id = toks_[i].text;
      if (id != "on_abort" && id != "on_top_abort" && id != "on_commit" &&
          id != "on_top_commit") {
        continue;
      }
      if (toks_[i].kind != Token::Kind::kIdent || !is(i + 1, "(") || is(i + 2, ")")) {
        continue;  // definition signature or argless call, not a registration
      }
      const std::size_t pclose = match(i + 1);
      if (pclose >= toks_.size()) continue;
      // The registered handler must be a lambda literal to inspect.
      std::size_t lam = i + 2;
      while (lam < pclose && !is(lam, "[")) ++lam;
      if (lam >= pclose) continue;
      std::size_t j = match(lam) + 1;        // past the capture list
      if (is(j, "(")) j = match(j) + 1;      // past the parameter list
      while (j < pclose && !is(j, "{")) ++j;  // past mutable/noexcept/-> T
      if (!is(j, "{")) continue;
      const std::size_t bend = match(j);

      bool compensated = false;
      std::string_view mutator;
      int mutator_line = -1;
      for (std::size_t k = j + 1; k < bend && k < toks_.size(); ++k) {
        if (toks_[k].kind != Token::Kind::kIdent) continue;
        if (toks_[k].text == "compensation_run") {
          compensated = true;
          break;
        }
        if (mutator_line < 0 && kCollectionMutators.count(toks_[k].text) != 0 &&
            k > 0 && (toks_[k - 1].text == "." || toks_[k - 1].text == "->") &&
            is(k + 1, "(")) {
          mutator = toks_[k].text;
          mutator_line = toks_[k].line;
        }
      }
      if (mutator_line >= 0 && !compensated) {
        const bool abort_handler = id == "on_abort" || id == "on_top_abort";
        emit(kHandlerMutation, mutator_line,
             "collection mutation '" + std::string(mutator) + "' inside " +
                 (abort_handler ? "an abort" : "a commit") + " handler with no "
                 "compensation_run registration — record the site first "
                 "(audit::compensation_run / sem::compensation_run) so the "
                 "checked runtime and the txmc oracle can attribute it");
      }
    }
  }

  // ---- chop-compensation pass ----

  /// Finds each `.piece(...)` call of the chop builder (tm/chop.h) and
  /// checks: a piece body that directly mutates a collection must either
  /// pass a compensation lambda as the trailing argument or register a
  /// compensation_run site itself.  The FINAL piece of a chain (the one
  /// `.run()` is called on) is exempt — nothing commits after it, so the
  /// enclosing abort path already covers it.
  void chop_compensation_pass() {
    for (std::size_t i = 1; i + 2 < toks_.size(); ++i) {
      if (toks_[i].text != "piece" || toks_[i].kind != Token::Kind::kIdent) continue;
      if (toks_[i - 1].text != ".") continue;
      if (!is(i + 1, "(")) continue;
      const std::size_t pclose = match(i + 1);
      if (pclose >= toks_.size()) continue;
      if (is(pclose + 1, ".") && is(pclose + 2, "run")) continue;  // final piece
      // Locate the body lambda: first '[' among the arguments (the name
      // string literal is blanked by clean_source, a leading explicit rank
      // is a number token — both sit before it).
      std::size_t lam = i + 2;
      while (lam < pclose && !is(lam, "[")) ++lam;
      if (lam >= pclose) continue;
      std::size_t j = match(lam) + 1;         // past the capture list
      if (is(j, "(")) j = match(j) + 1;       // past the parameter list
      while (j < pclose && !is(j, "{")) ++j;  // past mutable/noexcept/-> T
      if (!is(j, "{")) continue;
      const std::size_t bend = match(j);
      if (bend >= pclose) continue;
      // A top-level comma after the body lambda = a compensation argument.
      bool compensated = false;
      for (std::size_t m = bend + 1; m < pclose && !compensated; ++m) {
        if (is(m, ",")) compensated = true;
      }
      std::string_view mutator;
      int mutator_line = -1;
      for (std::size_t k = j + 1; k < bend && !compensated; ++k) {
        if (toks_[k].kind != Token::Kind::kIdent) continue;
        if (toks_[k].text == "compensation_run") compensated = true;
        if (mutator_line < 0 && kCollectionMutators.count(toks_[k].text) != 0 &&
            (toks_[k - 1].text == "." || toks_[k - 1].text == "->") &&
            is(k + 1, "(")) {
          mutator = toks_[k].text;
          mutator_line = toks_[k].line;
        }
      }
      if (mutator_line >= 0 && !compensated) {
        emit(kChopCompensation, mutator_line,
             "chop piece mutates a collection ('" + std::string(mutator) +
                 "') without a registered compensation — pass an undo lambda "
                 "as the piece's compensation argument (or register a "
                 "compensation_run site) so a failed or restarted chop can "
                 "reverse the committed piece");
      }
    }
  }

  std::string path_;
  Options opts_;
  Suppressions sup_;
  std::string cleaned_;  // backing storage for every token's string_view
  std::vector<Token> toks_;
  std::vector<Frame> stack_;
  std::size_t last_paren_head_ = static_cast<std::size_t>(-1);
  struct IsoDecl {
    std::string cls;
    std::string member;
    int line;
  };
  std::vector<IsoDecl> iso_decls_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> scan_source(const std::string& path, std::string_view content,
                                 const Options& opts) {
  Scanner s(path, content, opts);
  return s.run();
}

}  // namespace txlint
