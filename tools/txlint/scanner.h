// txlint — static lint for the repo's transactional-memory discipline.
//
// The TM library rests on invariants the C++ compiler cannot check (they are
// stated as prose in src/tm/runtime.h and src/tm/shared.h):
//
//   * every mutable field shared between virtual CPUs lives in a Shared<T>;
//   * the committed value behind a Shared (v_ / unsafe_peek) is only read by
//     test oracles and teardown code, never by workload code;
//   * the internal `Violated` unwind is never swallowed by a catch block;
//   * an open-nested body that registers a commit handler registers the
//     paired abort handler too (otherwise semantic locks leak on abort);
//   * Shared<T> objects are never captured by value in lambdas (the capture
//     would snapshot the cell instead of aliasing it).
//
// txlint is a heuristic, token-level scanner: it strips comments/strings,
// tracks namespace/class/function structure, and flags violations of each
// rule.  False positives are silenced in place with suppression comments:
//
//   // txlint: allow(rule-a, rule-b)      this line and the next
//   // txlint: begin-allow(rule)          ... region ...
//   // txlint: end-allow(rule)
//   // txlint: allow-file(rule)           whole file; `*` matches all rules
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace txlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rules this build of txlint knows, in reporting order.
const std::vector<RuleInfo>& rules();

struct Options {
  /// When non-empty, only these rule names run.
  std::vector<std::string> only_rules;
};

/// Scans one translation unit held in memory.  `path` is used only for
/// labeling findings.
std::vector<Finding> scan_source(const std::string& path, std::string_view content,
                                 const Options& opts = {});

}  // namespace txlint
