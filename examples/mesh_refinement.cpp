// Delaunay-style mesh refinement over a TransactionalQueue (paper S3.3).
//
// The motivating application for the reduced-isolation work queue: workers
// take "bad triangles" from a shared queue, refine them (which may produce
// NEW bad triangles that go back on the queue), and occasionally abort when
// their cavity was invalidated by a neighbour.  TransactionalQueue
// guarantees that aborted work reappears for someone else and speculative
// new work never leaks — the exact failure mode Kulkarni et al. hit with
// raw open nesting.
#include <cstdio>

#include "core/txqueue.h"
#include "jstd/linkedqueue.h"
#include "tm/shared.h"

namespace {

struct Mesh {
  // A toy "mesh": refinement quality per region; refining a bad region may
  // spoil up to two neighbours, which then need refinement themselves.
  static constexpr long kRegions = 256;
  std::vector<std::unique_ptr<atomos::Shared<long>>> quality;

  Mesh() {
    quality.reserve(kRegions);
    for (long r = 0; r < kRegions; ++r)
      quality.push_back(std::make_unique<atomos::Shared<long>>(0));
  }
};

}  // namespace

int main() {
  constexpr int kCpus = 8;
  sim::Config cfg;
  cfg.num_cpus = kCpus;
  cfg.mode = sim::Mode::kTcc;
  sim::Engine engine(cfg);
  atomos::Runtime runtime(engine);

  Mesh mesh;
  tcc::TransactionalQueue<long> worklist(std::make_unique<jstd::LinkedQueue<long>>());
  // Seed: every 4th region starts "bad".
  long seeded = 0;
  for (long r = 0; r < Mesh::kRegions; r += 4) {
    worklist.put(r);
    ++seeded;
  }

  atomos::Shared<long> refined(0);

  for (int cpu = 0; cpu < kCpus; ++cpu) {
    engine.spawn([&, cpu] {
      std::uint64_t s = 31 + static_cast<std::uint64_t>(cpu) * 13;
      auto rnd = [&s] {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
      };
      int idle_polls = 0;
      while (idle_polls < 3) {
        bool worked = false;
        atomos::atomically([&] {
          auto region = worklist.take();  // eager removal, compensated on abort
          if (!region.has_value()) return;
          worked = true;
          // "Refine" the region: mark it good, maybe spoil a neighbour.
          atomos::work(400);
          mesh.quality[static_cast<std::size_t>(*region)]->set(1);
          if (rnd() % 8 == 0) {  // cascading work, enqueued atomically
            const long neighbour = (*region + 1) % Mesh::kRegions;
            worklist.put(neighbour);
          }
          refined.set(refined.get() + 1);
        });
        idle_polls = worked ? 0 : idle_polls + 1;
      }
    });
  }
  engine.run();

  std::printf("seeded regions    : %ld\n", seeded);
  std::printf("refinements done  : %ld (>= seeded: cascades add work)\n",
              refined.unsafe_peek());
  std::printf("worklist leftover : %ld (must be 0)\n", worklist.inner().size());
  std::printf("violations        : %llu (conflicts on the mesh, never on the queue)\n",
              static_cast<unsigned long long>(
                  engine.stats().total(&sim::CpuStats::violations)));
  return worklist.inner().size() == 0 ? 0 : 1;
}
