// Mini SPECjbb2000-style run: the paper's Section 6.3 workload end to end.
//
// Drives the single-warehouse TPC-C-style engine in the "Atomos
// Transactional" configuration (open-nested counters + transactional
// collection classes around the shared tables), prints the operation mix
// and validates the TPC-C consistency invariants at the end.
#include <cstdio>

#include "jbb/engine.h"

int main() {
  constexpr int kCpus = 8;
  sim::Config cfg;
  cfg.num_cpus = kCpus;
  cfg.mode = sim::Mode::kTcc;
  sim::Engine sim_engine(cfg);
  atomos::Runtime runtime(sim_engine);

  jbb::JbbConfig jc;
  jc.flavor = jbb::Flavor::kAtomosTransactional;
  jc.districts = 10;
  jc.items = 500;
  jc.customers_per_district = 30;
  jbb::Engine engine(jc);

  std::vector<jbb::OpCounts> counts(kCpus);
  for (int cpu = 0; cpu < kCpus; ++cpu) {
    sim_engine.spawn([&, cpu] {
      std::uint64_t rng = 99 + static_cast<std::uint64_t>(cpu) * 271;
      for (int i = 0; i < 100; ++i) {
        const int district = static_cast<int>((rng >> 40) % 10);
        engine.run_mixed_op(district, rng, counts[static_cast<std::size_t>(cpu)]);
      }
    });
  }
  sim_engine.run();

  jbb::OpCounts total;
  for (const auto& c : counts) {
    total.new_order += c.new_order;
    total.payment += c.payment;
    total.order_status += c.order_status;
    total.delivery += c.delivery;
    total.stock_level += c.stock_level;
  }
  std::printf("operations        : %ld (NewOrder %ld, Payment %ld, OrderStatus %ld, "
              "Delivery %ld, StockLevel %ld)\n",
              total.total(), total.new_order, total.payment, total.order_status,
              total.delivery, total.stock_level);
  std::printf("orders committed  : %ld\n", engine.committed_order_count());
  std::printf("pending new-orders: %ld\n", engine.committed_new_order_count());
  std::printf("warehouse YTD     : %ld cents\n", engine.warehouse().ytd.unsafe_peek());
  std::printf("simulated cycles  : %llu\n",
              static_cast<unsigned long long>(sim_engine.elapsed_cycles()));

  std::string why;
  const bool ok = engine.check_consistency(&why);
  std::printf("consistency       : %s%s%s\n", ok ? "OK" : "FAILED", ok ? "" : " — ",
              ok ? "" : why.c_str());
  return ok ? 0 : 1;
}
