// Quickstart: wrap a map, run long transactions on many virtual CPUs.
//
//   $ ./examples/quickstart
//
// Demonstrates the library's core promise in ~40 lines: take an existing
// java.util-style HashMap, wrap it in a TransactionalMap, and long-running
// transactions touching DIFFERENT keys stop conflicting — while everything
// stays atomic and isolated.
#include <cstdio>

#include "core/txmap.h"
#include "jstd/hashmap.h"

int main() {
  // 1. A simulated 8-CPU chip running TCC-style transactional memory.
  sim::Config cfg;
  cfg.num_cpus = 8;
  cfg.mode = sim::Mode::kTcc;
  sim::Engine engine(cfg);
  atomos::Runtime runtime(engine);

  // 2. An ordinary chained hash map, wrapped in the transactional
  //    collection class.  Same interface: a drop-in replacement.
  tcc::TransactionalMap<long, long> map(
      std::make_unique<jstd::HashMap<long, long>>(1024));

  // 3. Eight workers, each running long transactions that insert a few
  //    thousand DISTINCT keys with computation in between.
  for (int cpu = 0; cpu < 8; ++cpu) {
    engine.spawn([&, cpu] {
      for (long i = 0; i < 50; ++i) {
        atomos::atomically([&] {
          const long key = cpu * 1000 + i;
          map.put(key, key * key);
          atomos::work(500);  // business logic inside the transaction
          if (auto v = map.get(key); !v.has_value() || *v != key * key) {
            std::printf("lost our own write?!\n");
          }
        });
      }
    });
  }
  engine.run();

  // 4. Result: 400 inserts committed; with the wrapper there are no
  //    memory-level conflicts on the map's internal size field, so the
  //    workers never violated each other.
  std::printf("entries committed : %ld\n", map.inner().size());
  std::printf("simulated cycles  : %llu\n",
              static_cast<unsigned long long>(engine.elapsed_cycles()));
  std::printf("parent violations : %llu   (try the same with a raw HashMap!)\n",
              static_cast<unsigned long long>(
                  engine.stats().total(&sim::CpuStats::violations)));
  return 0;
}
