// Composability example: atomic transfers across two transactional maps.
//
// The paper's key claim against raw open nesting: transactional collection
// classes let you COMPOSE several operations — even across several
// collections — into one atomic unit.  Here `checking` and `savings` are
// two independent TransactionalMaps; transfers move money between them and
// an auditor transaction sums both.  The global invariant (total balance is
// constant) must hold in every audit, under heavy concurrency.
#include <cstdio>

#include "core/txmap.h"
#include "jstd/hashmap.h"

int main() {
  constexpr int kCpus = 8;
  constexpr long kAccounts = 64;
  constexpr long kInitial = 1000;

  sim::Config cfg;
  cfg.num_cpus = kCpus;
  cfg.mode = sim::Mode::kTcc;
  sim::Engine engine(cfg);
  atomos::Runtime runtime(engine);

  tcc::TransactionalMap<long, long> checking(
      std::make_unique<jstd::HashMap<long, long>>(256));
  tcc::TransactionalMap<long, long> savings(
      std::make_unique<jstd::HashMap<long, long>>(256));
  for (long a = 0; a < kAccounts; ++a) {
    checking.put(a, kInitial);
    savings.put(a, kInitial);
  }
  const long expected_total = 2 * kAccounts * kInitial;

  long audits_ok = 0;
  long audits_bad = 0;

  for (int cpu = 0; cpu < kCpus; ++cpu) {
    engine.spawn([&, cpu] {
      std::uint64_t s = 1234 + static_cast<std::uint64_t>(cpu) * 77;
      auto rnd = [&s] {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
      };
      for (int i = 0; i < 60; ++i) {
        if (cpu == 0 && i % 6 == 0) {
          // Auditor: one transaction reads EVERY balance in both maps.
          atomos::atomically([&] {
            long total = 0;
            for (auto it = checking.iterator(); it->has_next();) total += it->next().second;
            for (auto it = savings.iterator(); it->has_next();) total += it->next().second;
            // Record on commit only: aborted audits don't count.
            atomos::Runtime::current().on_top_commit([&, total] {
              (total == expected_total ? audits_ok : audits_bad)++;
            });
          });
          continue;
        }
        // Transfer: withdraw from one ledger, deposit into the other.
        const long from = static_cast<long>(rnd() % kAccounts);
        const long to = static_cast<long>(rnd() % kAccounts);
        const long amount = 1 + static_cast<long>(rnd() % 50);
        atomos::atomically([&] {
          const long c = checking.get(from).value_or(0);
          atomos::work(200);  // interleaving window: isolation must hold
          checking.put(from, c - amount);
          const long v = savings.get(to).value_or(0);
          savings.put(to, v + amount);
        });
      }
    });
  }
  engine.run();

  long final_total = 0;
  for (auto it = checking.iterator(); it->has_next();) final_total += it->next().second;
  for (auto it = savings.iterator(); it->has_next();) final_total += it->next().second;

  std::printf("audits consistent   : %ld\n", audits_ok);
  std::printf("audits inconsistent : %ld   (must be 0)\n", audits_bad);
  std::printf("final total         : %ld (expected %ld)\n", final_total, expected_total);
  std::printf("violations survived : %llu\n",
              static_cast<unsigned long long>(
                  engine.stats().total(&sim::CpuStats::violations) +
                  engine.stats().total(&sim::CpuStats::semantic_violations)));
  return (audits_bad == 0 && final_total == expected_total) ? 0 : 1;
}
